// Package cluster turns a set of independent mincutd processes into one
// sharded service. Placement is consistent hashing over a static member
// list: every graph lives on the node its content hash maps to, every
// node builds the identical ring from the same -peers list, and any node
// accepts any request — the HTTP layer forwards work it does not own to
// the owner over the same API external clients use.
//
// The seam is sched.Submitter: Node implements it by dispatching each
// submission to the local scheduler (for graphs this node owns) or to a
// remote peer (a proxied solve with request-ID propagation, bounded
// retries on connection errors, and per-peer health gating fed by
// /healthz probes). Boost fan-out stays node-local — the owning node
// decomposes boosted solves across its own worker pool exactly as in
// single-node mode — so a cluster solve is the same decompose/merge
// pattern as a boost solve, with the network as the seam.
//
// Results are transport-neutral by construction: the owning node runs
// the identical deterministic solver whichever node the request entered
// through, so a Result is bit-for-bit identical across entry points.
// Membership is static in this iteration (no failure takeover): when a
// peer is down, its shard answers 502 and every other shard keeps
// working. Replication and rebalancing build on this seam.
package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	parcut "repro"
	"repro/internal/engine"
	"repro/internal/service/registry"
	"repro/internal/service/sched"
)

// Options configures a Node.
type Options struct {
	// Self is this node's advertised host:port — the address peers dial
	// and the identity used on the ring. It must appear in Members.
	Self string
	// Members is the full static member list, including Self.
	Members []string
	// VNodes is the virtual-node count per member (0 = a sensible
	// default). Every node must use the same value.
	VNodes int
	// Local runs the shard this node owns.
	Local sched.Submitter
	// Graphs is this node's registry, used to fetch a graph (and resolve
	// the "auto" engine against its size) when a local submission arrives
	// without one.
	Graphs *registry.Registry
	// RequestID extracts the request correlation ID from a context so
	// forwarded requests carry it; nil disables propagation. (The HTTP
	// layer owns the context key; injecting the accessor avoids an
	// import cycle.)
	RequestID func(context.Context) string
	// Retries is how many times a forward is re-dialed after a
	// connection-level failure (0 = default 2; negative = no retries).
	Retries int
	// ProbeInterval is the health-probe period (0 = 2s).
	ProbeInterval time.Duration
	// DialTimeout bounds connection establishment to a peer (0 = 2s).
	// Requests themselves are unbounded — a forwarded solve may
	// legitimately run for minutes; the caller's context bounds it.
	DialTimeout time.Duration
	// Transport overrides the HTTP transport used for peer traffic
	// (tests inject failures with it); nil builds a dialer-timeout one.
	Transport http.RoundTripper
	// Logger receives peer up/down transitions; nil means slog.Default().
	Logger *slog.Logger
}

// Node is one member of the cluster: the ring, the peer clients, and the
// local shard, glued together behind sched.Submitter.
type Node struct {
	self      string
	ring      *Ring
	peers     map[string]*Peer // keyed by addr; excludes self
	local     sched.Submitter
	graphs    *registry.Registry
	requestID func(context.Context) string
	log       *slog.Logger

	probeEvery time.Duration
	stopProbe  context.CancelFunc
	probeWG    sync.WaitGroup
}

// New builds the node and starts its health prober. Close stops it.
func New(opt Options) (*Node, error) {
	if opt.Self == "" {
		return nil, fmt.Errorf("cluster: missing self address")
	}
	if opt.Local == nil {
		return nil, fmt.Errorf("cluster: missing local submitter")
	}
	ring := NewRing(opt.Members, opt.VNodes)
	selfOnRing := false
	for _, m := range ring.Members() {
		if m == opt.Self {
			selfOnRing = true
		}
	}
	if !selfOnRing {
		return nil, fmt.Errorf("cluster: self %q is not in the member list %v", opt.Self, ring.Members())
	}
	if opt.Retries == 0 {
		opt.Retries = 2
	} else if opt.Retries < 0 {
		opt.Retries = 0
	}
	if opt.ProbeInterval <= 0 {
		opt.ProbeInterval = 2 * time.Second
	}
	if opt.DialTimeout <= 0 {
		opt.DialTimeout = 2 * time.Second
	}
	if opt.Logger == nil {
		opt.Logger = slog.Default()
	}
	transport := opt.Transport
	if transport == nil {
		transport = &http.Transport{
			DialContext:         (&net.Dialer{Timeout: opt.DialTimeout}).DialContext,
			MaxIdleConnsPerHost: 16,
		}
	}
	client := &http.Client{Transport: transport}
	n := &Node{
		self:       opt.Self,
		ring:       ring,
		peers:      make(map[string]*Peer),
		local:      opt.Local,
		graphs:     opt.Graphs,
		requestID:  opt.RequestID,
		log:        opt.Logger,
		probeEvery: opt.ProbeInterval,
	}
	for _, m := range ring.Members() {
		if m == opt.Self {
			continue
		}
		n.peers[m] = &Peer{addr: m, client: client, retries: opt.Retries, backoff: 50 * time.Millisecond}
	}
	ctx, cancel := context.WithCancel(context.Background())
	n.stopProbe = cancel
	n.probeWG.Add(1)
	go n.probeLoop(ctx)
	return n, nil
}

// Close stops the health prober.
func (n *Node) Close() {
	n.stopProbe()
	n.probeWG.Wait()
}

// probeLoop probes every peer each probeEvery tick and logs transitions.
func (n *Node) probeLoop(ctx context.Context) {
	defer n.probeWG.Done()
	t := time.NewTicker(n.probeEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			n.probeAll(ctx)
		}
	}
}

// probeAll runs one probe round (exposed to tests via the package).
func (n *Node) probeAll(ctx context.Context) {
	for _, p := range n.peers {
		pctx, cancel := context.WithTimeout(ctx, n.probeEvery)
		wasUp := p.Up()
		up := p.probe(pctx)
		cancel()
		if up != wasUp {
			if up {
				n.log.Info("cluster peer up", "peer", p.addr)
			} else {
				n.log.Warn("cluster peer down", "peer", p.addr)
			}
		}
	}
}

// Self returns this node's advertised address.
func (n *Node) Self() string { return n.self }

// Ring returns the placement ring (immutable).
func (n *Node) Ring() *Ring { return n.ring }

// Owner returns the member that owns graphID.
func (n *Node) Owner(graphID string) string { return n.ring.Owner(graphID) }

// IsLocal reports whether this node owns graphID.
func (n *Node) IsLocal(graphID string) bool { return n.ring.Owner(graphID) == n.self }

// Peer returns the client for addr (nil for self or unknown members).
func (n *Node) Peer(addr string) *Peer { return n.peers[addr] }

// Submit implements sched.Submitter by routing on the graph's owner: the
// local scheduler for shards this node owns (fetching the graph — and
// resolving the "auto" engine against its size — when the caller did not
// supply it), a proxied remote solve otherwise. Remote submissions start
// their HTTP request immediately, so submitting a batch of handles and
// then waiting on each runs the remote solves concurrently, mirroring
// the local scheduler's submit-all-then-wait coalescing pattern.
func (n *Node) Submit(ctx context.Context, key sched.Key, g *parcut.Graph, opts sched.SubmitOpts) (sched.Handle, bool, error) {
	owner := n.ring.Owner(key.GraphID)
	if owner == n.self {
		if g == nil || key.Opt.Engine == "" || key.Opt.Engine == engine.Auto {
			if n.graphs == nil {
				return nil, false, fmt.Errorf("cluster: no registry to resolve graph %s", key.GraphID)
			}
			gg, info, err := n.graphs.Get(key.GraphID)
			if err != nil {
				return nil, false, err
			}
			g = gg
			name := key.Opt.Engine
			if name == "" {
				name = engine.Auto
			}
			eng, err := engine.Resolve(name, info.N, info.M)
			if err != nil {
				return nil, false, err
			}
			key.Opt.Engine = eng.Name()
		}
		return n.local.Submit(ctx, key, g, opts)
	}
	p := n.peers[owner]
	if p == nil {
		return nil, false, fmt.Errorf("cluster: owner %q of %s is not a known peer", owner, key.GraphID)
	}
	var rid string
	if n.requestID != nil {
		rid = n.requestID(ctx)
	}
	h, err := submitRemote(ctx, p, n.self, key, opts, rid)
	if err != nil {
		return nil, false, err
	}
	return h, false, nil
}

// Job implements sched.Submitter for the local shard. Cross-node job
// lookup is an HTTP-layer concern (job IDs are node-local; the router
// falls back to asking peers).
func (n *Node) Job(id string) (sched.Status, bool) { return n.local.Job(id) }

// Cancel implements sched.Submitter for the local shard.
func (n *Node) Cancel(id string) bool { return n.local.Cancel(id) }

// InvalidateGraph implements sched.Submitter for the local shard: graph
// deletes are forwarded to the owner by the router, and only the owner
// ever caches that graph's results.
func (n *Node) InvalidateGraph(graphID string) int { return n.local.InvalidateGraph(graphID) }

// PeerStats is one peer's forwarding counters for /metrics.
type PeerStats struct {
	Addr      string
	Up        bool
	Forwarded int64
	Failed    int64
}

// Stats is a snapshot of the node's cluster state for /metrics and
// /healthz.
type Stats struct {
	Self    string
	Members []string
	VNodes  int
	Peers   []PeerStats // sorted by address
}

// Stats returns the current cluster snapshot.
func (n *Node) Stats() Stats {
	st := Stats{Self: n.self, Members: n.ring.Members(), VNodes: n.ring.VNodes()}
	for _, p := range n.peers {
		st.Peers = append(st.Peers, PeerStats{
			Addr:      p.addr,
			Up:        p.Up(),
			Forwarded: p.forwarded.Load(),
			Failed:    p.failed.Load(),
		})
	}
	sort.Slice(st.Peers, func(i, j int) bool { return st.Peers[i].Addr < st.Peers[j].Addr })
	return st
}

var _ sched.Submitter = (*Node)(nil)
