package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// defaultVNodes is the virtual-node count per member when Options.VNodes
// is zero: enough points that every member of a 3–10 node ring stays
// within a factor of two of its fair share (pinned by TestRingBalance),
// small enough that building and searching the ring is free.
const defaultVNodes = 256

// Ring is a consistent-hash ring over a static member list. Each member
// contributes VNodes points (FNV-1a of "addr#i"), keys hash with the same
// function, and a key is owned by the first point clockwise from its
// hash. Placement is fully deterministic: every node that is given the
// same member list — in any order — builds the identical ring, so the
// cluster agrees on ownership without any coordination. Removing a member
// moves only the keys that member owned (the consistent-hashing
// guarantee), which is what makes a future rebalancing PR incremental.
type Ring struct {
	members []string // sorted, deduplicated
	vnodes  int
	points  []ringPoint // sorted by (hash, member)
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewRing builds the ring over members with vnodes points per member
// (vnodes <= 0 means defaultVNodes). Members are deduplicated and sorted,
// so the caller's ordering never affects placement. An empty member list
// yields a ring whose Owner returns "".
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	seen := make(map[string]bool, len(members))
	sorted := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		sorted = append(sorted, m)
	}
	sort.Strings(sorted)
	r := &Ring{members: sorted, vnodes: vnodes}
	r.points = make([]ringPoint, 0, len(sorted)*vnodes)
	for _, m := range sorted {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: ringHash(m + "#" + strconv.Itoa(i)), member: m})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash collisions between members are broken by name so every
		// node resolves them identically.
		return r.points[a].member < r.points[b].member
	})
	return r
}

// ringHash is FNV-1a over the key bytes: stable across processes,
// architectures, and Go versions (unlike maphash), which placement
// correctness depends on — two nodes hashing the same graph ID must get
// the same owner.
func ringHash(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return h.Sum64()
}

// Owner returns the member that owns key ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := ringHash(key)
	// First point with hash > h, wrapping to the start of the ring.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash > h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// Members returns the sorted member list the ring was built over.
func (r *Ring) Members() []string { return r.members }

// VNodes returns the virtual-node count per member.
func (r *Ring) VNodes() int { return r.vnodes }
