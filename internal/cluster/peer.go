package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"
)

// Forwarding headers. ForwardedFromHeader marks a request as already
// routed once — a node receiving it always serves locally, so a ring
// disagreement between nodes (mid-rollout config skew) degrades to a 404
// instead of a forwarding loop. NodeHeader is informational: which node's
// registry/scheduler actually served the request.
const (
	ForwardedFromHeader = "X-Mincut-Forwarded-From"
	NodeHeader          = "X-Mincut-Node"
	requestIDHeader     = "X-Request-Id"
)

// ErrPeerDown reports a forward short-circuited by health gating: the
// peer's last probe (or last forward) failed and no probe has succeeded
// since, so dialing it again would only burn the caller's latency budget.
var ErrPeerDown = errors.New("cluster: peer is down")

// Peer is one remote member: its address, a shared HTTP client, health
// state, and the per-peer forwarding counters exported on /metrics.
//
// Health is optimistic: a peer starts up, is marked down when a forward
// or probe fails at the connection level, and is marked up again by the
// next successful probe. While down, forwards fail fast with ErrPeerDown.
type Peer struct {
	addr    string
	client  *http.Client
	retries int           // re-dials after a connection-level failure
	backoff time.Duration // base delay between retries (grows linearly)

	down      atomic.Bool
	forwarded atomic.Int64 // requests sent (counted once, not per retry)
	failed    atomic.Int64 // requests that exhausted retries or were gated
}

// Addr returns the peer's host:port.
func (p *Peer) Addr() string { return p.addr }

// Up reports the peer's health-gate state.
func (p *Peer) Up() bool { return !p.down.Load() }

// MarkDown gates the peer; forwards fail fast until a probe succeeds.
func (p *Peer) MarkDown() { p.down.Store(true) }

// MarkUp lifts the gate.
func (p *Peer) MarkUp() { p.down.Store(false) }

// retryable reports whether err is a connection-level failure worth
// re-dialing: anything except the caller giving up. HTTP responses of any
// status are never retried — the peer answered; its answer stands.
func retryable(err error) bool {
	return err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// Do sends one HTTP request to the peer with health gating and bounded
// retries on connection errors. body may be nil; it is re-sent verbatim
// on every retry. headers are copied onto every attempt. The caller owns
// the response body. A request that exhausts its retries marks the peer
// down and counts as failed.
func (p *Peer) Do(ctx context.Context, method, pathAndQuery, contentType string, body []byte, headers map[string]string) (*http.Response, error) {
	if !p.Up() {
		p.failed.Add(1)
		return nil, fmt.Errorf("%w: %s", ErrPeerDown, p.addr)
	}
	p.forwarded.Add(1)
	url := "http://" + p.addr + pathAndQuery
	var lastErr error
	for attempt := 0; attempt <= p.retries; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(time.Duration(attempt) * p.backoff):
			case <-ctx.Done():
				p.failed.Add(1)
				return nil, fmt.Errorf("cluster: forward to %s: %w", p.addr, context.Cause(ctx))
			}
		}
		var rd *bytes.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		var req *http.Request
		var err error
		if rd != nil {
			req, err = http.NewRequestWithContext(ctx, method, url, rd)
		} else {
			req, err = http.NewRequestWithContext(ctx, method, url, nil)
		}
		if err != nil {
			p.failed.Add(1)
			return nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		for k, v := range headers {
			req.Header.Set(k, v)
		}
		resp, err := p.client.Do(req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !retryable(err) {
			break
		}
	}
	p.MarkDown()
	p.failed.Add(1)
	return nil, fmt.Errorf("cluster: forward to %s: %w", p.addr, lastErr)
}

// probe checks the peer's /healthz and updates the health gate. It
// bypasses do: probes must dial even while the peer is gated down (that
// is how the gate lifts), never retry, and don't count as forwards.
func (p *Peer) probe(ctx context.Context) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+p.addr+"/healthz", nil)
	if err != nil {
		p.MarkDown()
		return false
	}
	resp, err := p.client.Do(req)
	if err != nil {
		p.MarkDown()
		return false
	}
	resp.Body.Close()
	// A draining node answers 503: it is alive but bleeding traffic, so
	// stop routing new work at it, same as a dead one.
	if resp.StatusCode != http.StatusOK {
		p.MarkDown()
		return false
	}
	p.MarkUp()
	return true
}
