package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	parcut "repro"
	"repro/internal/service/sched"
	"repro/internal/trace"
)

// fakeTransport scripts peer responses per call: fn receives the request
// and the 1-based call number.
type fakeTransport struct {
	mu sync.Mutex
	n  int
	fn func(r *http.Request, call int) (*http.Response, error)
}

func (f *fakeTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	f.mu.Lock()
	f.n++
	call := f.n
	f.mu.Unlock()
	return f.fn(r, call)
}

func (f *fakeTransport) calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

func jsonResp(code int, body string) *http.Response {
	return &http.Response{
		StatusCode: code,
		Header:     http.Header{"Content-Type": []string{"application/json"}},
		Body:       io.NopCloser(strings.NewReader(body)),
	}
}

func testPeer(ft *fakeTransport, retries int) *Peer {
	return &Peer{addr: "peer:1", client: &http.Client{Transport: ft}, retries: retries, backoff: time.Millisecond}
}

// TestPeerRetriesConnectionErrors: connection-level failures are re-dialed
// up to the retry budget; the request succeeds if a dial gets through, and
// the forward is counted once, not per attempt.
func TestPeerRetriesConnectionErrors(t *testing.T) {
	ft := &fakeTransport{fn: func(r *http.Request, call int) (*http.Response, error) {
		if call <= 2 {
			return nil, errors.New("connection refused")
		}
		return jsonResp(http.StatusOK, `{}`), nil
	}}
	p := testPeer(ft, 2)
	resp, err := p.Do(context.Background(), http.MethodGet, "/x", "", nil, nil)
	if err != nil {
		t.Fatalf("Do after flaky dials: %v", err)
	}
	resp.Body.Close()
	if got := ft.calls(); got != 3 {
		t.Fatalf("transport calls = %d, want 3 (two failures + success)", got)
	}
	if got := p.forwarded.Load(); got != 1 {
		t.Fatalf("forwarded counter = %d, want 1", got)
	}
	if !p.Up() {
		t.Fatal("peer marked down although the request ultimately succeeded")
	}
}

// TestPeerExhaustedRetriesMarksDown: a request that burns its whole retry
// budget marks the peer down, counts as failed, and subsequent requests
// fail fast with ErrPeerDown without touching the transport.
func TestPeerExhaustedRetriesMarksDown(t *testing.T) {
	ft := &fakeTransport{fn: func(r *http.Request, call int) (*http.Response, error) {
		return nil, errors.New("connection refused")
	}}
	p := testPeer(ft, 2)
	if _, err := p.Do(context.Background(), http.MethodGet, "/x", "", nil, nil); err == nil {
		t.Fatal("Do succeeded against an always-failing transport")
	}
	if p.Up() {
		t.Fatal("peer still up after exhausting retries")
	}
	if got := ft.calls(); got != 3 {
		t.Fatalf("transport calls = %d, want 3 (initial + 2 retries)", got)
	}
	_, err := p.Do(context.Background(), http.MethodGet, "/x", "", nil, nil)
	if !errors.Is(err, ErrPeerDown) {
		t.Fatalf("gated Do error = %v, want ErrPeerDown", err)
	}
	if got := ft.calls(); got != 3 {
		t.Fatalf("gated Do touched the transport (calls = %d)", got)
	}
	if got := p.failed.Load(); got != 2 {
		t.Fatalf("failed counter = %d, want 2 (exhausted + gated)", got)
	}
}

// TestPeerNeverRetriesHTTPResponses: any HTTP response — including a 500
// — is the peer's answer; retrying it could re-run a non-idempotent
// request the peer already executed.
func TestPeerNeverRetriesHTTPResponses(t *testing.T) {
	ft := &fakeTransport{fn: func(r *http.Request, call int) (*http.Response, error) {
		return jsonResp(http.StatusInternalServerError, `{"error":"boom"}`), nil
	}}
	p := testPeer(ft, 3)
	resp, err := p.Do(context.Background(), http.MethodPost, "/x", "application/json", []byte(`{}`), nil)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 passed through", resp.StatusCode)
	}
	if got := ft.calls(); got != 1 {
		t.Fatalf("transport calls = %d, want exactly 1 (no retry on HTTP responses)", got)
	}
}

// TestPeerNoRetryOnCancel: the caller giving up is not a peer failure —
// no retry, and the peer keeps its health state.
func TestPeerNoRetryOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	// Surface the canceled-context error shape the http client produces.
	ft := &fakeTransport{fn: func(r *http.Request, call int) (*http.Response, error) {
		cancel()
		return nil, fmt.Errorf("round trip: %w", context.Canceled)
	}}
	p := testPeer(ft, 5)
	if _, err := p.Do(ctx, http.MethodGet, "/x", "", nil, nil); err == nil {
		t.Fatal("Do succeeded with canceled context")
	}
	if got := ft.calls(); got != 1 {
		t.Fatalf("transport calls = %d, want 1 (cancellation is not retryable)", got)
	}
}

// TestPeerProbeRecovers: a down peer comes back through a successful
// probe (the only path that lifts the gate), and a 503 probe — a
// draining node — keeps it down.
func TestPeerProbeRecovers(t *testing.T) {
	status := http.StatusServiceUnavailable
	ft := &fakeTransport{fn: func(r *http.Request, call int) (*http.Response, error) {
		if r.URL.Path != "/healthz" {
			t.Errorf("probe path = %q, want /healthz", r.URL.Path)
		}
		return jsonResp(status, `{}`), nil
	}}
	p := testPeer(ft, 0)
	p.MarkDown()
	if p.probe(context.Background()) {
		t.Fatal("probe against a draining (503) peer reported up")
	}
	if p.Up() {
		t.Fatal("peer up after 503 probe")
	}
	status = http.StatusOK
	if !p.probe(context.Background()) {
		t.Fatal("probe against a healthy peer reported down")
	}
	if !p.Up() {
		t.Fatal("successful probe did not lift the health gate")
	}
}

// ridKey carries the test request ID through a context, standing in for
// the HTTP layer's accessor.
type ridKey struct{}

// fakeLocal records local submissions and returns a canned handle.
type fakeLocal struct {
	mu   sync.Mutex
	keys []sched.Key
}

func (f *fakeLocal) Submit(ctx context.Context, key sched.Key, g *parcut.Graph, opts sched.SubmitOpts) (sched.Handle, bool, error) {
	f.mu.Lock()
	f.keys = append(f.keys, key)
	f.mu.Unlock()
	return fakeHandle{}, false, nil
}
func (f *fakeLocal) Job(id string) (sched.Status, bool) { return sched.Status{}, false }
func (f *fakeLocal) Cancel(id string) bool              { return false }
func (f *fakeLocal) InvalidateGraph(graphID string) int { return 0 }

type fakeHandle struct{}

func (fakeHandle) ID() string               { return "local-job-1" }
func (fakeHandle) Fanout() int              { return 0 }
func (fakeHandle) TraceSpan() trace.SpanRef { return trace.SpanRef{} }
func (fakeHandle) Wait(ctx context.Context) (parcut.Result, error) {
	return parcut.Result{Value: 42}, nil
}

// testNode builds a 2-member node with a scripted transport and returns
// it plus one graph ID owned by each member.
func testNode(t *testing.T, ft *fakeTransport, local *fakeLocal) (n *Node, selfKey, peerKey string) {
	t.Helper()
	const self, peer = "self:1", "peer:1"
	node, err := New(Options{
		Self:          self,
		Members:       []string{self, peer},
		Local:         local,
		RequestID:     func(ctx context.Context) string { v, _ := ctx.Value(ridKey{}).(string); return v },
		Retries:       -1,
		ProbeInterval: time.Hour, // keep the prober out of call counts
		Transport:     ft,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Close)
	for k := 0; selfKey == "" || peerKey == ""; k++ {
		id := fmt.Sprintf("sha256:%064x", k)
		if node.Owner(id) == self && selfKey == "" {
			selfKey = id
		}
		if node.Owner(id) == peer && peerKey == "" {
			peerKey = id
		}
	}
	return node, selfKey, peerKey
}

// TestNodeSubmitRoutesLocally: a graph this node owns goes straight to
// the local submitter; the transport is never touched.
func TestNodeSubmitRoutesLocally(t *testing.T) {
	ft := &fakeTransport{fn: func(r *http.Request, call int) (*http.Response, error) {
		t.Error("local submission reached the network")
		return nil, errors.New("unreachable")
	}}
	local := &fakeLocal{}
	node, selfKey, _ := testNode(t, ft, local)
	g := parcut.NewGraph(2)
	if err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	key := sched.Key{GraphID: selfKey, Opt: sched.SolveOptions{Seed: 1, Engine: "geissmann"}}
	h, hit, err := node.Submit(context.Background(), key, g, sched.SubmitOpts{})
	if err != nil || hit {
		t.Fatalf("Submit = (hit=%v, err=%v), want fresh local submission", hit, err)
	}
	res, err := h.Wait(context.Background())
	if err != nil || res.Value != 42 {
		t.Fatalf("Wait = (%v, %v), want the fake local result 42", res, err)
	}
	if len(local.keys) != 1 || local.keys[0].GraphID != selfKey {
		t.Fatalf("local submitter saw %v, want one submission for %s", local.keys, selfKey)
	}
}

// TestNodeSubmitRoutesRemotely: a graph a peer owns becomes a proxied
// solve on that peer, carrying the forwarding marker and the caller's
// request ID, and the handle reports the owner's result verbatim.
func TestNodeSubmitRoutesRemotely(t *testing.T) {
	var gotPath, gotFwd, gotRid string
	ft := &fakeTransport{fn: func(r *http.Request, call int) (*http.Response, error) {
		gotPath = r.URL.Path
		gotFwd = r.Header.Get(ForwardedFromHeader)
		gotRid = r.Header.Get("X-Request-Id")
		return jsonResp(http.StatusOK,
			`{"job_id":"abc-job-7","status":"done","engine":"geissmann","cached":true,"value":9,"in_cut":[true,false,false],"trees_scanned":3}`), nil
	}}
	local := &fakeLocal{}
	node, _, peerKey := testNode(t, ft, local)
	ctx := context.WithValue(context.Background(), ridKey{}, "rid-123")
	key := sched.Key{GraphID: peerKey, Opt: sched.SolveOptions{Seed: 5, Engine: "auto"}}
	h, hit, err := node.Submit(ctx, key, nil, sched.SubmitOpts{Class: sched.ClassBatch})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if hit {
		t.Fatal("remote submission reported a local cache hit")
	}
	res, err := h.Wait(context.Background())
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if res.Value != 9 || len(res.InCut) != 3 || res.TreesScanned != 3 {
		t.Fatalf("remote result = %+v, want value 9, 3-vertex partition, 3 trees", res)
	}
	if want := "/v1/graphs/" + peerKey + "/mincut"; gotPath != want {
		t.Errorf("proxied path = %q, want %q", gotPath, want)
	}
	if gotFwd != "self:1" {
		t.Errorf("%s = %q, want self:1", ForwardedFromHeader, gotFwd)
	}
	if gotRid != "rid-123" {
		t.Errorf("X-Request-Id = %q, want rid-123 propagated from the context", gotRid)
	}
	if h.ID() != "abc-job-7" {
		t.Errorf("handle ID = %q, want the owner's job ID", h.ID())
	}
	if rh := h.(*remoteHandle); !rh.Cached() || rh.Engine() != "geissmann" || rh.Node() != "peer:1" {
		t.Errorf("remote handle metadata = (cached=%v, engine=%q, node=%q)", rh.Cached(), rh.Engine(), rh.Node())
	}
	if len(local.keys) != 0 {
		t.Errorf("remote submission also hit the local submitter: %v", local.keys)
	}
}

// TestNodeSubmitRemoteError: the owner answering with an error status
// surfaces as a Wait error naming the owner, not a zero result.
func TestNodeSubmitRemoteError(t *testing.T) {
	ft := &fakeTransport{fn: func(r *http.Request, call int) (*http.Response, error) {
		return jsonResp(http.StatusNotFound, `{"error":"unknown graph"}`), nil
	}}
	node, _, peerKey := testNode(t, ft, &fakeLocal{})
	h, _, err := node.Submit(context.Background(), sched.Key{GraphID: peerKey}, nil, sched.SubmitOpts{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, werr := h.Wait(context.Background()); werr == nil || !strings.Contains(werr.Error(), "unknown graph") {
		t.Fatalf("Wait error = %v, want the owner's error surfaced", werr)
	}
}

// TestNodeSubmitGatedPeer: submissions to a down peer fail at Submit
// time with ErrPeerDown — the caller gets immediate backpressure instead
// of a handle doomed to time out.
func TestNodeSubmitGatedPeer(t *testing.T) {
	ft := &fakeTransport{fn: func(r *http.Request, call int) (*http.Response, error) {
		return nil, errors.New("connection refused")
	}}
	node, _, peerKey := testNode(t, ft, &fakeLocal{})
	node.Peer("peer:1").MarkDown()
	h, _, err := node.Submit(context.Background(), sched.Key{GraphID: peerKey}, nil, sched.SubmitOpts{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, werr := h.Wait(context.Background()); !errors.Is(werr, ErrPeerDown) {
		t.Fatalf("Wait error = %v, want ErrPeerDown", werr)
	}
	if got := ft.calls(); got != 0 {
		t.Fatalf("gated submission touched the transport (%d calls)", got)
	}
}

// TestNodeStats: the snapshot carries the ring shape and per-peer
// counters the metrics endpoint renders.
func TestNodeStats(t *testing.T) {
	ft := &fakeTransport{fn: func(r *http.Request, call int) (*http.Response, error) {
		return jsonResp(http.StatusOK, `{}`), nil
	}}
	node, _, _ := testNode(t, ft, &fakeLocal{})
	st := node.Stats()
	if st.Self != "self:1" || len(st.Members) != 2 || st.VNodes != defaultVNodes {
		t.Fatalf("Stats = %+v, want self:1 over 2 members at default vnodes", st)
	}
	if len(st.Peers) != 1 || st.Peers[0].Addr != "peer:1" || !st.Peers[0].Up {
		t.Fatalf("peer stats = %+v, want one up peer:1", st.Peers)
	}
}
