package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"

	parcut "repro"
	"repro/internal/service/sched"
	"repro/internal/trace"
)

// solveRequest is the subset of httpapi's mincut request body the remote
// submitter fills in. Field names must match the HTTP API; the engine may
// be "auto" — the owning node resolves it against the graph it holds.
type solveRequest struct {
	Seed           int64  `json:"seed"`
	WantPartition  bool   `json:"want_partition,omitempty"`
	Boost          int    `json:"boost,omitempty"`
	ParallelPhases bool   `json:"parallel_phases,omitempty"`
	Engine         string `json:"engine,omitempty"`
	Class          string `json:"class,omitempty"`
}

// solveResponse is the subset of httpapi's job response the remote
// submitter reads back.
type solveResponse struct {
	JobID        string `json:"job_id"`
	Status       string `json:"status"`
	Engine       string `json:"engine"`
	Cached       bool   `json:"cached"`
	Value        *int64 `json:"value"`
	InCut        []bool `json:"in_cut"`
	TreesScanned int    `json:"trees_scanned"`
	Fanout       int    `json:"fanout"`
	Error        string `json:"error"`
}

// remoteHandle is a sched.Handle whose job runs on another node: Submit
// starts the proxied solve request eagerly (so a batch of remote handles
// solves concurrently), Wait joins it. The owning node does all the real
// work — coalescing, caching, boost fan-out — through the same HTTP API
// external clients use.
type remoteHandle struct {
	peer    *Peer
	graphID string

	done chan struct{}
	once sync.Once

	// Written by the request goroutine before done closes, read only
	// after: the owning node's view of the job.
	id     string
	engine string
	fanout int
	cached bool
	node   string
	res    parcut.Result
	err    error
}

// submitRemote starts a solve of key on p. The request inherits rid as
// its X-Request-Id, so the owning node's trace carries the originating
// request's correlation ID. ctx governs the whole proxied solve.
func submitRemote(ctx context.Context, p *Peer, self string, key sched.Key, opts sched.SubmitOpts, rid string) (*remoteHandle, error) {
	body, err := json.Marshal(solveRequest{
		Seed:           key.Opt.Seed,
		WantPartition:  key.Opt.WantPartition,
		Boost:          key.Opt.Boost,
		ParallelPhases: key.Opt.ParallelPhases,
		Engine:         key.Opt.Engine,
		Class:          string(opts.Class),
	})
	if err != nil {
		return nil, err
	}
	h := &remoteHandle{peer: p, graphID: key.GraphID, node: p.addr, done: make(chan struct{})}
	go h.run(ctx, self, body, rid)
	return h, nil
}

// run performs the proxied solve and publishes the outcome on h.
func (h *remoteHandle) run(ctx context.Context, self string, body []byte, rid string) {
	defer close(h.done)
	headers := map[string]string{ForwardedFromHeader: self}
	if rid != "" {
		headers[requestIDHeader] = rid
	}
	path := "/v1/graphs/" + url.PathEscape(h.graphID) + "/mincut"
	resp, err := h.peer.Do(ctx, http.MethodPost, path, "application/json", body, headers)
	if err != nil {
		h.err = err
		return
	}
	defer resp.Body.Close()
	var sr solveResponse
	if derr := json.NewDecoder(io.LimitReader(resp.Body, 256<<20)).Decode(&sr); derr != nil {
		h.err = fmt.Errorf("cluster: bad response from %s (%s): %v", h.peer.addr, resp.Status, derr)
		return
	}
	h.id, h.engine, h.fanout, h.cached = sr.JobID, sr.Engine, sr.Fanout, sr.Cached
	if resp.StatusCode != http.StatusOK || sr.Value == nil {
		msg := sr.Error
		if msg == "" {
			msg = resp.Status
		}
		h.err = fmt.Errorf("cluster: solve on %s: %s", h.peer.addr, msg)
		return
	}
	h.res = parcut.Result{Value: *sr.Value, InCut: sr.InCut, TreesScanned: sr.TreesScanned}
}

// ID returns the job ID assigned by the owning node ("" until Wait
// returns — remote job identity only exists once the owner answered).
func (h *remoteHandle) ID() string {
	select {
	case <-h.done:
		return h.id
	default:
		return ""
	}
}

// Fanout reports the owning node's boost decomposition (0 until Wait).
func (h *remoteHandle) Fanout() int {
	select {
	case <-h.done:
		return h.fanout
	default:
		return 0
	}
}

// TraceSpan returns the zero SpanRef: the span tree lives on the owning
// node, reachable through its /v1/traces with the propagated request ID.
func (h *remoteHandle) TraceSpan() trace.SpanRef { return trace.SpanRef{} }

// Wait joins the proxied solve. The solve itself is bounded by the
// context Submit was given; Wait's ctx only bounds this caller's wait.
func (h *remoteHandle) Wait(ctx context.Context) (parcut.Result, error) {
	select {
	case <-h.done:
		return h.res, h.err
	case <-ctx.Done():
		return parcut.Result{}, fmt.Errorf("cluster: wait: %w", context.Cause(ctx))
	}
}

// Engine returns the concrete engine the owning node ran ("" until Wait).
func (h *remoteHandle) Engine() string { return h.engine }

// Cached reports whether the owning node served the solve from its
// result cache (meaningful after Wait).
func (h *remoteHandle) Cached() bool { return h.cached }

// Node returns the address of the node that ran the job.
func (h *remoteHandle) Node() string { return h.node }

var _ sched.Handle = (*remoteHandle)(nil)
