package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestRingDeterministicUnderMemberOrder pins the core placement
// guarantee: every node builds the identical ring from the same member
// list regardless of the order its -peers flag listed them in.
func TestRingDeterministicUnderMemberOrder(t *testing.T) {
	members := []string{"a:1", "b:2", "c:3", "d:4", "e:5"}
	base := NewRing(members, 0)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		shuffled := append([]string(nil), members...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		r := NewRing(shuffled, 0)
		for k := 0; k < 500; k++ {
			key := fmt.Sprintf("sha256:%064x", k)
			if got, want := r.Owner(key), base.Owner(key); got != want {
				t.Fatalf("trial %d: Owner(%q) = %q under order %v, want %q", trial, key, got, shuffled, want)
			}
		}
	}
}

// TestRingDedupAndEmpty covers member-list hygiene: duplicates and empty
// strings are dropped, and the empty ring owns nothing.
func TestRingDedupAndEmpty(t *testing.T) {
	r := NewRing([]string{"b:2", "a:1", "b:2", "", "a:1"}, 8)
	if got := r.Members(); len(got) != 2 || got[0] != "a:1" || got[1] != "b:2" {
		t.Fatalf("Members() = %v, want [a:1 b:2]", got)
	}
	empty := NewRing(nil, 0)
	if got := empty.Owner("anything"); got != "" {
		t.Fatalf("empty ring Owner = %q, want \"\"", got)
	}
}

// TestRingBalance checks virtual nodes spread keys acceptably: with the
// default vnode count, no member of a 5-node ring should own less than
// half or more than double its fair share of a large key set.
func TestRingBalance(t *testing.T) {
	members := []string{"a:1", "b:2", "c:3", "d:4", "e:5"}
	r := NewRing(members, 0)
	const keys = 20000
	counts := make(map[string]int)
	for k := 0; k < keys; k++ {
		counts[r.Owner(fmt.Sprintf("sha256:%064x", k))]++
	}
	fair := keys / len(members)
	for _, m := range members {
		c := counts[m]
		if c < fair/2 || c > fair*2 {
			t.Errorf("member %s owns %d of %d keys, outside [%d, %d]", m, c, keys, fair/2, fair*2)
		}
	}
}

// TestRingRedistribution pins the consistent-hashing guarantee the
// future rebalancing work depends on: removing a member moves only the
// keys that member owned — every key owned by a survivor keeps its
// owner exactly.
func TestRingRedistribution(t *testing.T) {
	members := []string{"a:1", "b:2", "c:3", "d:4"}
	before := NewRing(members, 0)
	after := NewRing([]string{"a:1", "b:2", "c:3"}, 0) // d:4 removed
	const keys = 10000
	moved := 0
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("sha256:%064x", k)
		ob, oa := before.Owner(key), after.Owner(key)
		if ob == "d:4" {
			moved++
			if oa == "d:4" {
				t.Fatalf("key %q still owned by removed member", key)
			}
			continue
		}
		if ob != oa {
			t.Fatalf("key %q moved %q -> %q although its owner survived", key, ob, oa)
		}
	}
	if moved == 0 {
		t.Fatal("removed member owned no keys; balance test should have caught this")
	}
}

// TestRingHashStable pins the hash function itself: placement must agree
// across processes, architectures, and releases, so the raw FNV-1a
// values may never change.
func TestRingHashStable(t *testing.T) {
	// Reference values computed from the FNV-1a specification.
	cases := map[string]uint64{
		"":            0xcbf29ce484222325,
		"a":           0xaf63dc4c8601ec8c,
		"sha256:abcd": 0x35fa30ee15955b6c,
	}
	for in, want := range cases {
		if got := ringHash(in); got != want {
			t.Errorf("ringHash(%q) = %#x, want %#x", in, got, want)
		}
	}
}
