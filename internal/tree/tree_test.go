package tree

import (
	"math/rand"
	"testing"

	"repro/internal/wd"
)

// randomParent builds a random parent array: vertex i > 0 attaches to a
// uniform earlier vertex under a random relabeling.
func randomParent(n int, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	parent := make([]int32, n)
	parent[perm[0]] = None
	for i := 1; i < n; i++ {
		parent[perm[i]] = int32(perm[rng.Intn(i)])
	}
	return parent
}

// pathParent builds a path 0 <- 1 <- ... <- n-1 rooted at 0.
func pathParent(n int) []int32 {
	parent := make([]int32, n)
	parent[0] = None
	for i := 1; i < n; i++ {
		parent[i] = int32(i - 1)
	}
	return parent
}

func TestFromParentValidation(t *testing.T) {
	cases := [][]int32{
		{},           // empty
		{0},          // self-parent (no root)
		{None, None}, // two roots
		{1, 0},       // cycle, no root
		{None, 5},    // out of range
		{None, 2, 1}, // 2-cycle hanging off nothing reachable... parent[1]=2, parent[2]=1: cycle
	}
	for i, parent := range cases {
		if _, err := FromParent(parent); err == nil {
			t.Errorf("case %d: invalid parent array accepted", i)
		}
	}
}

func TestSmallTreeLayout(t *testing.T) {
	//      0
	//     / \
	//    1   2
	//   / \    \
	//  3   4    5
	parent := []int32{None, 0, 0, 1, 1, 2}
	tr, err := FromParent(parent)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root != 0 {
		t.Fatalf("root = %d", tr.Root)
	}
	wantDepth := []int32{0, 1, 1, 2, 2, 2}
	for v, d := range wantDepth {
		if tr.Depth[v] != d {
			t.Errorf("depth[%d]=%d want %d", v, tr.Depth[v], d)
		}
	}
	// Preorder with children in vertex order: 0 1 3 4 2 5.
	wantPre := []int32{0, 1, 3, 4, 2, 5}
	for i, v := range wantPre {
		if tr.Pre[i] != v {
			t.Errorf("pre[%d]=%d want %d", i, tr.Pre[i], v)
		}
	}
	// Subtree sizes via intervals.
	wantSize := []int32{6, 3, 2, 1, 1, 1}
	for v, s := range wantSize {
		if tr.Out[v]-tr.In[v] != s {
			t.Errorf("size[%d]=%d want %d", v, tr.Out[v]-tr.In[v], s)
		}
	}
	if !tr.IsAncestor(0, 5) || !tr.IsAncestor(1, 4) || !tr.IsAncestor(3, 3) {
		t.Error("ancestor relation broken")
	}
	if tr.IsAncestor(1, 5) || tr.IsAncestor(3, 4) || tr.IsAncestor(5, 0) {
		t.Error("non-ancestor reported as ancestor")
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		n := 1 + int(seed)*137%900 + int(seed)
		parent := randomParent(n, seed)
		seq, err := FromParent(parent)
		if err != nil {
			t.Fatal(err)
		}
		var m wd.Meter
		pp, err := FromParentParallel(parent, nil, &m)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < n; v++ {
			if seq.Depth[v] != pp.Depth[v] {
				t.Fatalf("seed %d: depth[%d] %d vs %d", seed, v, seq.Depth[v], pp.Depth[v])
			}
			if seq.In[v] != pp.In[v] || seq.Out[v] != pp.Out[v] {
				t.Fatalf("seed %d: interval[%d] [%d,%d) vs [%d,%d)", seed, v,
					seq.In[v], seq.Out[v], pp.In[v], pp.Out[v])
			}
			if seq.Pre[v] != pp.Pre[v] {
				t.Fatalf("seed %d: pre[%d] %d vs %d", seed, v, seq.Pre[v], pp.Pre[v])
			}
		}
	}
}

func TestParallelOnPathAndSingle(t *testing.T) {
	for _, n := range []int{1, 2, 3, 100} {
		parent := pathParent(n)
		pp, err := FromParentParallel(parent, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < n; v++ {
			if pp.Depth[v] != int32(v) || pp.In[v] != int32(v) || pp.Out[v] != int32(n) {
				t.Fatalf("n=%d v=%d: depth=%d in=%d out=%d", n, v, pp.Depth[v], pp.In[v], pp.Out[v])
			}
		}
	}
}

func TestSubtreeSum(t *testing.T) {
	parent := []int32{None, 0, 0, 1, 1, 2}
	tr, _ := FromParent(parent)
	x := []int64{1, 10, 100, 1000, 10000, 100000}
	got := tr.SubtreeSum(x, nil, nil)
	want := []int64{111111, 11010, 100100, 1000, 10000, 100000}
	for v := range want {
		if got[v] != want[v] {
			t.Errorf("subtreeSum[%d]=%d want %d", v, got[v], want[v])
		}
	}
}

func TestSubtreeSumRandomAgainstNaive(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		n := 200 + int(seed)*31
		parent := randomParent(n, seed+100)
		tr, err := FromParent(parent)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		x := make([]int64, n)
		for i := range x {
			x[i] = int64(rng.Intn(1000) - 500)
		}
		got := tr.SubtreeSum(x, nil, nil)
		// Naive: accumulate up from every vertex.
		want := make([]int64, n)
		for v := 0; v < n; v++ {
			u := int32(v)
			for u != None {
				want[u] += x[v]
				u = parent[u]
			}
		}
		for v := 0; v < n; v++ {
			if got[v] != want[v] {
				t.Fatalf("seed %d: sum[%d]=%d want %d", seed, v, got[v], want[v])
			}
		}
	}
}

func TestRootEdgeList(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		n := 2 + int(seed*53)%500
		parent := randomParent(n, seed+7)
		// Forget the orientation, keep the edges.
		var edges [][2]int32
		var root int32
		for v, p := range parent {
			if p == None {
				root = int32(v)
				continue
			}
			edges = append(edges, [2]int32{int32(v), p})
		}
		got, err := RootEdgeList(n, edges, root, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := RootEdgeListSeq(n, edges, root)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < n; v++ {
			if got[v] != parent[v] {
				t.Fatalf("seed %d: parent[%d]=%d want %d", seed, v, got[v], parent[v])
			}
			if seq[v] != parent[v] {
				t.Fatalf("seed %d: seq parent[%d]=%d want %d", seed, v, seq[v], parent[v])
			}
		}
	}
}

func TestRootEdgeListRejectsNonTree(t *testing.T) {
	// Triangle + isolated vertex: 3 edges on 4 vertices.
	edges := [][2]int32{{0, 1}, {1, 2}, {2, 0}}
	if _, err := RootEdgeList(4, edges, 0, nil, nil); err == nil {
		t.Error("cycle accepted by RootEdgeList")
	}
	if _, err := RootEdgeListSeq(4, edges, 0); err == nil {
		t.Error("cycle accepted by RootEdgeListSeq")
	}
	if _, err := RootEdgeList(4, edges[:2], 0, nil, nil); err == nil {
		t.Error("wrong edge count accepted")
	}
}

func TestRootEdgeListSingleVertex(t *testing.T) {
	got, err := RootEdgeList(1, nil, 0, nil, nil)
	if err != nil || got[0] != None {
		t.Fatalf("single vertex: %v %v", got, err)
	}
}
