package tree

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

type quickTreeCase struct {
	Seed int64
	N    uint16
}

// Generate implements quick.Generator.
func (quickTreeCase) Generate(rng *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(quickTreeCase{Seed: rng.Int63(), N: uint16(rng.Intn(1500))})
}

// TestQuickParallelEqualsSequential: the Euler-tour construction agrees
// with the DFS construction on arbitrary trees (depths, preorder numbers,
// subtree intervals).
func TestQuickParallelEqualsSequential(t *testing.T) {
	property := func(q quickTreeCase) bool {
		n := 1 + int(q.N)
		parent := randomParent(n, q.Seed)
		seq, err := FromParent(parent)
		if err != nil {
			return false
		}
		par, err := FromParentParallel(parent, nil, nil)
		if err != nil {
			return false
		}
		for v := 0; v < n; v++ {
			if seq.Depth[v] != par.Depth[v] || seq.In[v] != par.In[v] ||
				seq.Out[v] != par.Out[v] || seq.Pre[v] != par.Pre[v] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(2024))}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSubtreeIntervalInvariants: preorder intervals nest or are
// disjoint, sizes telescope, and IsAncestor is consistent with parent
// chains.
func TestQuickSubtreeIntervalInvariants(t *testing.T) {
	property := func(q quickTreeCase) bool {
		n := 1 + int(q.N)
		parent := randomParent(n, q.Seed)
		tr, err := FromParent(parent)
		if err != nil {
			return false
		}
		// Subtree size = 1 + sum of child subtree sizes.
		for v := int32(0); v < int32(n); v++ {
			size := tr.Out[v] - tr.In[v]
			sum := int32(1)
			for i := tr.ChildOff[v]; i < tr.ChildOff[v+1]; i++ {
				c := tr.Child[i]
				sum += tr.Out[c] - tr.In[c]
			}
			if size != sum {
				return false
			}
			// Parent chain consistency.
			if p := tr.Parent[v]; p != None {
				if !tr.IsAncestor(p, v) || tr.IsAncestor(v, p) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(515))}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}
