// Package tree provides rooted trees with the Euler-tour machinery the
// paper's algorithms traverse instead of the input graph (§1 "spanning
// trees determine the order in which edges are accessed"): children in CSR
// form, depths, preorder numbers and subtree intervals, subtree sums, and
// ancestor tests. Construction is available both sequentially (reference)
// and in parallel via Euler tours and list ranking (§3.3, [1]).
package tree

import (
	"fmt"

	"repro/internal/listrank"
	"repro/internal/par"
	"repro/internal/wd"
)

// None marks "no vertex" (the root's parent).
const None = int32(-1)

// Tree is a rooted tree on vertices 0..n-1.
type Tree struct {
	Parent []int32 // Parent[Root] == None
	Root   int32

	// Children of v are Child[ChildOff[v]:ChildOff[v+1]].
	ChildOff []int32
	Child    []int32

	Depth []int32
	// Preorder: vertex v occupies position In[v]; subtree(v) is the
	// interval [In[v], Out[v]) of preorder positions; Pre[i] is the vertex
	// at position i.
	In, Out []int32
	Pre     []int32
}

// N returns the number of vertices.
func (t *Tree) N() int { return len(t.Parent) }

// NumChildren returns the number of children of v.
func (t *Tree) NumChildren(v int32) int32 { return t.ChildOff[v+1] - t.ChildOff[v] }

// IsAncestor reports whether u is an ancestor of v (every vertex is its own
// ancestor, matching the paper's convention in §1.1.1).
func (t *Tree) IsAncestor(u, v int32) bool {
	return t.In[u] <= t.In[v] && t.In[v] < t.Out[u]
}

// FromParent builds a tree from a parent array (Parent[root] == None),
// validating that the structure is a single tree. Children appear in
// increasing vertex order. Sequential construction; see FromParentParallel
// for the Euler-tour construction.
func FromParent(parent []int32) (*Tree, error) {
	t, err := skeletonFromParent(parent, nil)
	if err != nil {
		return nil, err
	}
	n := len(parent)
	t.Depth = make([]int32, n)
	t.In = make([]int32, n)
	t.Out = make([]int32, n)
	t.Pre = make([]int32, n)
	// Iterative preorder DFS.
	stack := make([]int32, 0, 64)
	stack = append(stack, t.Root)
	idx := int32(0)
	visited := 0
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		t.In[v] = idx
		t.Pre[idx] = v
		idx++
		visited++
		// Push children in reverse so the smallest-index child pops first.
		for i := t.ChildOff[v+1] - 1; i >= t.ChildOff[v]; i-- {
			c := t.Child[i]
			t.Depth[c] = t.Depth[v] + 1
			stack = append(stack, c)
		}
	}
	if visited != n {
		return nil, fmt.Errorf("tree: parent array has a cycle or unreachable vertices (visited %d of %d)", visited, n)
	}
	// Out by reverse preorder: Out[v] = max over children, or In[v]+1.
	for i := n - 1; i >= 0; i-- {
		v := t.Pre[i]
		out := t.In[v] + 1
		for j := t.ChildOff[v]; j < t.ChildOff[v+1]; j++ {
			if o := t.Out[t.Child[j]]; o > out {
				out = o
			}
		}
		t.Out[v] = out
	}
	return t, nil
}

// skeletonFromParent validates the parent array and builds the children CSR.
func skeletonFromParent(parent []int32, pool *par.Pool) (*Tree, error) {
	n := len(parent)
	if n == 0 {
		return nil, fmt.Errorf("tree: empty parent array")
	}
	root := None
	counts := make([]int64, n+1)
	for v, p := range parent {
		if p == None {
			if root != None {
				return nil, fmt.Errorf("tree: multiple roots (%d and %d)", root, v)
			}
			root = int32(v)
			continue
		}
		if p < 0 || int(p) >= n {
			return nil, fmt.Errorf("tree: parent[%d] = %d out of range", v, p)
		}
		if p == int32(v) {
			return nil, fmt.Errorf("tree: vertex %d is its own parent", v)
		}
		counts[p+1]++
	}
	if root == None {
		return nil, fmt.Errorf("tree: no root")
	}
	pool.InclusiveSum(counts, counts)
	off := make([]int32, n+1)
	for i := range off {
		off[i] = int32(counts[i])
	}
	child := make([]int32, n-1)
	cursor := make([]int32, n)
	copy(cursor, off[:n])
	for v := 0; v < n; v++ { // ascending v: children sorted by vertex id
		p := parent[v]
		if p == None {
			continue
		}
		child[cursor[p]] = int32(v)
		cursor[p]++
	}
	t := &Tree{Parent: parent, Root: root, ChildOff: off, Child: child}
	return t, nil
}

// FromParentParallel builds the same Tree as FromParent but computes
// depths, preorder numbers, and subtree intervals with an Euler tour and
// list ranking (work O(n log n), depth O(log n) with the pointer-jumping
// ranker).
func FromParentParallel(parent []int32, pool *par.Pool, m *wd.Meter) (*Tree, error) {
	t, err := skeletonFromParent(parent, pool)
	if err != nil {
		return nil, err
	}
	n := len(parent)
	t.Depth = make([]int32, n)
	t.In = make([]int32, n)
	t.Out = make([]int32, n)
	t.Pre = make([]int32, n)
	if n == 1 {
		t.Out[0] = 1
		t.Pre[0] = t.Root
		return t, nil
	}
	// childPos[c] = index of c within its parent's child list.
	childPos := make([]int32, n)
	pool.For(n, func(v int) {
		for j := t.ChildOff[v]; j < t.ChildOff[v+1]; j++ {
			childPos[t.Child[j]] = j - t.ChildOff[v]
		}
	})
	m.Add(int64(n), 1)
	// Arcs: down(c) = 2c (parent(c) -> c), up(c) = 2c+1 (c -> parent(c))
	// for every non-root c. Root slots stay unused (successor Nil).
	succ := make([]int32, 2*n)
	pool.For(n, func(vi int) {
		v := int32(vi)
		succ[2*v] = listrank.Nil
		succ[2*v+1] = listrank.Nil
		if v == t.Root {
			return
		}
		// down(v): descend to v's first child or bounce back up.
		if t.NumChildren(v) > 0 {
			succ[2*v] = 2 * t.Child[t.ChildOff[v]]
		} else {
			succ[2*v] = 2*v + 1
		}
		// up(v): next sibling's down, or parent's up (tour ends at root).
		p := t.Parent[v]
		if pos := childPos[v]; t.ChildOff[p]+pos+1 < t.ChildOff[p+1] {
			succ[2*v+1] = 2 * t.Child[t.ChildOff[p]+pos+1]
		} else if p != t.Root {
			succ[2*v+1] = 2*p + 1
		}
	})
	m.Add(int64(n), 1)
	rank := listrank.Rank(succ, pool, m)
	total := 2 * (n - 1) // arcs in the tour
	// Scatter arcs into tour order; +1 for a down arc, -1 for an up arc.
	kind := make([]int64, total)
	arcAt := make([]int32, total)
	pool.For(n, func(vi int) {
		v := int32(vi)
		if v == t.Root {
			return
		}
		dpos := int32(total-1) - rank[2*v]
		upos := int32(total-1) - rank[2*v+1]
		kind[dpos] = 1
		kind[upos] = -1
		arcAt[dpos] = 2 * v
		arcAt[upos] = 2*v + 1
	})
	m.Add(int64(n), 1)
	// downCount[i] = number of down arcs at positions <= i; depthSum[i] =
	// depth after executing arc i.
	downCount := make([]int64, total)
	depthSum := make([]int64, total)
	pool.For(total, func(i int) {
		if kind[i] > 0 {
			downCount[i] = 1
		}
		depthSum[i] = kind[i]
	})
	pool.InclusiveSum(downCount, downCount)
	pool.InclusiveSum(depthSum, depthSum)
	m.Add(int64(total)*3, 3*wd.CeilLog2(total))
	pool.For(total, func(i int) {
		arc := arcAt[i]
		v := arc / 2
		if arc%2 == 0 { // down arc: first visit of v
			t.In[v] = int32(downCount[i])
			t.Depth[v] = int32(depthSum[i])
		} else { // up arc: subtree of v is complete
			t.Out[v] = int32(downCount[i]) + 1
		}
	})
	m.Add(int64(total), 1)
	t.In[t.Root] = 0
	t.Out[t.Root] = int32(n)
	t.Depth[t.Root] = 0
	pool.For(n, func(v int) {
		t.Pre[t.In[v]] = int32(v)
	})
	m.Add(int64(n), 1)
	return t, nil
}

// SubtreeSum returns, for every vertex v, the sum of x over the subtree of
// v, computed with preorder prefix sums (work O(n), depth O(log n)).
func (t *Tree) SubtreeSum(x []int64, pool *par.Pool, m *wd.Meter) []int64 {
	n := t.N()
	pre := make([]int64, n+1)
	pool.For(n, func(i int) {
		pre[i+1] = x[t.Pre[i]]
	})
	pool.InclusiveSum(pre, pre)
	out := make([]int64, n)
	pool.For(n, func(v int) {
		out[v] = pre[t.Out[v]] - pre[t.In[v]]
	})
	m.Add(3*int64(n), 2+wd.CeilLog2(n))
	return out
}
