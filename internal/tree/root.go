package tree

import (
	"fmt"

	"repro/internal/listrank"
	"repro/internal/par"
	"repro/internal/wd"
)

// RootEdgeList orients an unrooted spanning tree, given as n-1 undirected
// edges, into a parent array rooted at root. It builds the Euler circuit of
// the bidirected tree and list-ranks it: for each edge, the direction
// traversed first is the parent-to-child direction. Work O(n log n), depth
// O(log n).
func RootEdgeList(n int, edges [][2]int32, root int32, pool *par.Pool, m *wd.Meter) ([]int32, error) {
	if len(edges) != n-1 {
		return nil, fmt.Errorf("tree: spanning tree needs %d edges, got %d", n-1, len(edges))
	}
	if root < 0 || int(root) >= n {
		return nil, fmt.Errorf("tree: root %d out of range", root)
	}
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = None
	}
	if n == 1 {
		return parent, nil
	}
	// Half-edge CSR: arc 2i goes edges[i][0] -> edges[i][1], arc 2i+1 the
	// reverse. Group arcs by tail vertex.
	counts := make([]int64, n+1)
	for _, e := range edges {
		counts[e[0]+1]++
		counts[e[1]+1]++
	}
	pool.InclusiveSum(counts, counts)
	off := make([]int32, n+1)
	for i := range off {
		off[i] = int32(counts[i])
	}
	slot := make([]int32, 2*(n-1)) // slot[arc] = position of arc in its tail's list
	arcs := make([]int32, 2*(n-1)) // arcs grouped by tail
	cursor := make([]int32, n)
	copy(cursor, off[:n])
	for i, e := range edges {
		a, b := int32(2*i), int32(2*i+1)
		slot[a] = cursor[e[0]]
		arcs[cursor[e[0]]] = a
		cursor[e[0]]++
		slot[b] = cursor[e[1]]
		arcs[cursor[e[1]]] = b
		cursor[e[1]]++
	}
	// Euler circuit successor: succ(u->v) = the arc after (v->u) in v's
	// cyclic adjacency list. Cutting the circuit at the root's first
	// outgoing arc turns it into a list.
	total := 2 * (n - 1)
	succ := make([]int32, total)
	head := func(arc int32) int32 {
		e := edges[arc/2]
		if arc%2 == 0 {
			return e[1]
		}
		return e[0]
	}
	pool.For(total, func(ai int) {
		arc := int32(ai)
		v := head(arc)
		twin := arc ^ 1
		pos := slot[twin]
		next := pos + 1
		if next == off[v+1] {
			next = off[v]
		}
		succ[arc] = arcs[next]
	})
	m.Add(int64(total), 1)
	start := arcs[off[root]]
	// Find the arc whose successor is start and cut the circuit there.
	pool.For(total, func(ai int) {
		if succ[ai] == start {
			succ[ai] = listrank.Nil
		}
	})
	m.Add(int64(total), 1)
	rank := listrank.Rank(succ, pool, m)
	if int(rank[start]) != total-1 {
		return nil, fmt.Errorf("tree: edges do not form a spanning tree (tour covers %d of %d arcs)", rank[start]+1, total)
	}
	// For each edge, the endpoint entered by the earlier-ranked arc is the
	// child of the other. rank counts arcs after, so earlier = larger rank.
	pool.For(n-1, func(i int) {
		a, b := int32(2*i), int32(2*i+1)
		if rank[a] > rank[b] {
			parent[head(a)] = head(b)
		} else {
			parent[head(b)] = head(a)
		}
	})
	m.Add(int64(n), 1)
	parent[root] = None
	return parent, nil
}

// RootEdgeListSeq is the sequential (BFS) reference for RootEdgeList.
func RootEdgeListSeq(n int, edges [][2]int32, root int32) ([]int32, error) {
	if len(edges) != n-1 {
		return nil, fmt.Errorf("tree: spanning tree needs %d edges, got %d", n-1, len(edges))
	}
	adj := make([][]int32, n)
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	parent := make([]int32, n)
	seen := make([]bool, n)
	for i := range parent {
		parent[i] = None
	}
	queue := []int32{root}
	seen[root] = true
	visited := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range adj[v] {
			if !seen[u] {
				seen[u] = true
				parent[u] = v
				visited++
				queue = append(queue, u)
			}
		}
	}
	if visited != n {
		return nil, fmt.Errorf("tree: edges do not form a spanning tree (reached %d of %d)", visited, n)
	}
	return parent, nil
}
