package lca

import (
	"math/rand"
	"testing"

	"repro/internal/tree"
)

func naiveLCA(t *tree.Tree, u, v int32) int32 {
	// Climb the deeper vertex until depths match, then climb together.
	for t.Depth[u] > t.Depth[v] {
		u = t.Parent[u]
	}
	for t.Depth[v] > t.Depth[u] {
		v = t.Parent[v]
	}
	for u != v {
		u, v = t.Parent[u], t.Parent[v]
	}
	return u
}

func randomTree(n int, seed int64) *tree.Tree {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	parent := make([]int32, n)
	parent[perm[0]] = tree.None
	for i := 1; i < n; i++ {
		parent[perm[i]] = int32(perm[rng.Intn(i)])
	}
	t, err := tree.FromParent(parent)
	if err != nil {
		panic(err)
	}
	return t
}

func TestLCASmall(t *testing.T) {
	//      0
	//     / \
	//    1   2
	//   / \    \
	//  3   4    5
	parent := []int32{tree.None, 0, 0, 1, 1, 2}
	tr, err := tree.FromParent(parent)
	if err != nil {
		t.Fatal(err)
	}
	l := New(tr, nil, nil)
	cases := [][3]int32{
		{3, 4, 1}, {3, 5, 0}, {1, 4, 1}, {0, 5, 0}, {5, 5, 5}, {2, 5, 2}, {4, 2, 0},
	}
	for _, c := range cases {
		if got := l.Query(c[0], c[1]); got != c[2] {
			t.Errorf("LCA(%d,%d)=%d want %d", c[0], c[1], got, c[2])
		}
	}
}

func TestLCAMatchesNaiveOnRandomTrees(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		n := 2 + int(seed*211)%800
		tr := randomTree(n, seed)
		l := New(tr, nil, nil)
		rng := rand.New(rand.NewSource(seed + 50))
		for q := 0; q < 500; q++ {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			want := naiveLCA(tr, u, v)
			if got := l.Query(u, v); got != want {
				t.Fatalf("seed %d: LCA(%d,%d)=%d want %d", seed, u, v, got, want)
			}
		}
	}
}

func TestLCAOnPath(t *testing.T) {
	n := 300
	parent := make([]int32, n)
	parent[0] = tree.None
	for i := 1; i < n; i++ {
		parent[i] = int32(i - 1)
	}
	tr, _ := tree.FromParent(parent)
	l := New(tr, nil, nil)
	for _, c := range [][3]int32{{0, 299, 0}, {100, 200, 100}, {250, 250, 250}} {
		if got := l.Query(c[0], c[1]); got != c[2] {
			t.Errorf("path LCA(%d,%d)=%d want %d", c[0], c[1], got, c[2])
		}
	}
}

func TestQueryBatch(t *testing.T) {
	tr := randomTree(500, 9)
	l := New(tr, nil, nil)
	rng := rand.New(rand.NewSource(10))
	k := 2000
	us := make([]int32, k)
	vs := make([]int32, k)
	out := make([]int32, k)
	for i := range us {
		us[i] = int32(rng.Intn(500))
		vs[i] = int32(rng.Intn(500))
	}
	l.QueryBatch(us, vs, out, nil)
	for i := range us {
		if want := naiveLCA(tr, us[i], vs[i]); out[i] != want {
			t.Fatalf("batch LCA(%d,%d)=%d want %d", us[i], vs[i], out[i], want)
		}
	}
}

func TestSingleVertex(t *testing.T) {
	tr, _ := tree.FromParent([]int32{tree.None})
	l := New(tr, nil, nil)
	if got := l.Query(0, 0); got != 0 {
		t.Fatalf("LCA(0,0)=%d", got)
	}
}
