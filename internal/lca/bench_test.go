package lca

import (
	"math/rand"
	"testing"
)

func BenchmarkBuild64k(b *testing.B) {
	tr := randomTree(1<<16, 1)
	for i := 0; i < b.N; i++ {
		New(tr, nil, nil)
	}
}

func BenchmarkQuery(b *testing.B) {
	tr := randomTree(1<<16, 2)
	l := New(tr, nil, nil)
	rng := rand.New(rand.NewSource(3))
	us := make([]int32, 1024)
	vs := make([]int32, 1024)
	for i := range us {
		us[i] = int32(rng.Intn(tr.N()))
		vs[i] = int32(rng.Intn(tr.N()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Query(us[i%1024], vs[i%1024])
	}
}

func BenchmarkQueryBatch64k(b *testing.B) {
	tr := randomTree(1<<16, 4)
	l := New(tr, nil, nil)
	rng := rand.New(rand.NewSource(5))
	k := 1 << 16
	us := make([]int32, k)
	vs := make([]int32, k)
	out := make([]int32, k)
	for i := range us {
		us[i] = int32(rng.Intn(tr.N()))
		vs[i] = int32(rng.Intn(tr.N()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.QueryBatch(us, vs, out, nil)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(k), "ns/query")
}
