// Package lca answers lowest-common-ancestor queries on a rooted tree via
// the Euler-tour + range-minimum reduction of Schieber–Vishkin lineage
// (paper Appendix A cites [28]): O(n log n) construction work, O(1) per
// query, with batched parallel query evaluation. The descendant case of
// the two-respecting cut search uses it to attribute every graph edge to
// the subtree that contains both endpoints (the ρ values of Appendix A).
package lca

import (
	"repro/internal/par"
	"repro/internal/tree"
	"repro/internal/wd"
)

const blockShift = 5 // 32-entry blocks for the block-RMQ layer

// LCA is a lowest-common-ancestor index over a Tree.
type LCA struct {
	t     *tree.Tree
	pool  *par.Pool
	euler []int32 // vertex visit sequence, length 2n-1
	first []int32 // first occurrence of each vertex in euler
	edep  []int32 // depth of euler[i]
	// Block sparse table: blockMin[k][b] = index (into euler) of the
	// minimum-depth entry among blocks b..b+2^k-1.
	blockMin [][]int32
}

// New builds the index. The Euler sequence scatters in parallel from the
// preorder intervals: vertex v enters the tour at position 2·In[v]−Depth[v]
// and its parent re-appears at 2·Out[v]−Depth[v]−1 when v's subtree
// completes, which together cover all 2n−1 positions.
func New(t *tree.Tree, pool *par.Pool, m *wd.Meter) *LCA {
	n := t.N()
	l := &LCA{t: t, pool: pool}
	L := 2*n - 1
	l.euler = make([]int32, L)
	l.first = make([]int32, n)
	pool.For(n, func(vi int) {
		v := int32(vi)
		enter := 2*t.In[v] - t.Depth[v]
		l.first[v] = enter
		l.euler[enter] = v
		if p := t.Parent[v]; p != tree.None {
			l.euler[2*t.Out[v]-t.Depth[v]-1] = p
		}
	})
	l.edep = make([]int32, L)
	pool.For(L, func(i int) {
		l.edep[i] = t.Depth[l.euler[i]]
	})
	m.Add(int64(2*L), 2)
	// Block minima.
	nb := (L + (1 << blockShift) - 1) >> blockShift
	row0 := make([]int32, nb)
	pool.For(nb, func(b int) {
		lo := b << blockShift
		hi := lo + (1 << blockShift)
		if hi > L {
			hi = L
		}
		best := int32(lo)
		for i := lo + 1; i < hi; i++ {
			if l.edep[i] < l.edep[best] {
				best = int32(i)
			}
		}
		row0[b] = best
	})
	l.blockMin = append(l.blockMin, row0)
	for size := 2; size <= nb; size *= 2 {
		prev := l.blockMin[len(l.blockMin)-1]
		cur := make([]int32, nb-size+1)
		half := size / 2
		pool.For(len(cur), func(b int) {
			x, y := prev[b], prev[b+half]
			if l.edep[y] < l.edep[x] {
				x = y
			}
			cur[b] = x
		})
		l.blockMin = append(l.blockMin, cur)
	}
	m.Add(int64(2*nb), wd.CeilLog2(nb)+1)
	return l
}

// Query returns the lowest common ancestor of u and v.
func (l *LCA) Query(u, v int32) int32 {
	lo, hi := l.first[u], l.first[v]
	if lo > hi {
		lo, hi = hi, lo
	}
	return l.euler[l.argminDepth(lo, hi)]
}

// argminDepth returns the index of the minimum-depth Euler entry in the
// inclusive range [lo, hi].
func (l *LCA) argminDepth(lo, hi int32) int32 {
	bl := lo >> blockShift
	bh := hi >> blockShift
	if bl == bh {
		return l.scan(lo, hi)
	}
	best := l.scan(lo, (bl+1)<<blockShift-1)
	if c := l.scan(bh<<blockShift, hi); l.edep[c] < l.edep[best] {
		best = c
	}
	if bl+1 <= bh-1 {
		// Whole blocks bl+1 .. bh-1 via the sparse table.
		cnt := bh - 1 - bl
		k := 0
		for (1 << (k + 1)) <= int(cnt) {
			k++
		}
		row := l.blockMin[k]
		x := row[bl+1]
		y := row[bh-int32(1<<k)]
		if l.edep[y] < l.edep[x] {
			x = y
		}
		if l.edep[x] < l.edep[best] {
			best = x
		}
	}
	return best
}

func (l *LCA) scan(lo, hi int32) int32 {
	best := lo
	for i := lo + 1; i <= hi; i++ {
		if l.edep[i] < l.edep[best] {
			best = i
		}
	}
	return best
}

// QueryBatch computes out[i] = LCA(us[i], vs[i]) for all pairs in
// parallel, on the pool the index was built with.
func (l *LCA) QueryBatch(us, vs, out []int32, m *wd.Meter) {
	if len(us) != len(vs) || len(us) != len(out) {
		panic("lca: QueryBatch length mismatch")
	}
	l.pool.For(len(us), func(i int) {
		out[i] = l.Query(us[i], vs[i])
	})
	m.Add(int64(len(us)), 1)
}
