package packing

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/mst"
)

func TestBinomialBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := binomial(0, 0.5, 100, rng); got != 0 {
		t.Errorf("binomial(0)=%d", got)
	}
	if got := binomial(10, 0, 100, rng); got != 0 {
		t.Errorf("p=0 gave %d", got)
	}
	if got := binomial(10, 1, 100, rng); got != 10 {
		t.Errorf("p=1 gave %d", got)
	}
	if got := binomial(10, 1, 4, rng); got != 4 {
		t.Errorf("cap ignored: %d", got)
	}
	// Statistical sanity: mean of Binomial(1000, 0.3) is 300.
	var sum int64
	const trials = 300
	for i := 0; i < trials; i++ {
		sum += binomial(1000, 0.3, 1<<30, rng)
	}
	mean := float64(sum) / trials
	if mean < 270 || mean > 330 {
		t.Errorf("binomial mean %.1f, want ≈300", mean)
	}
}

// isSpanningTree verifies that the edge indices form a spanning tree of g.
func isSpanningTree(g *graph.Graph, idxs []int32) bool {
	if len(idxs) != g.N()-1 {
		return false
	}
	edges := make([]graph.Edge, len(idxs))
	for i, ei := range idxs {
		edges[i] = g.Edge(int(ei))
	}
	return mst.Components(g.N(), edges, nil, nil) == 1
}

// respects counts how many tree edges cross the cut.
func respects(g *graph.Graph, idxs []int32, inCut []bool) int {
	crossing := 0
	for _, ei := range idxs {
		e := g.Edge(int(ei))
		if inCut[e.U] != inCut[e.V] {
			crossing++
		}
	}
	return crossing
}

func TestSampleTreesAreSpanningTrees(t *testing.T) {
	g := gen.RandomConnected(64, 256, 20, 5)
	res, err := SampleTrees(g, Options{Seed: 42}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trees) == 0 {
		t.Fatal("no trees sampled")
	}
	for i, tr := range res.Trees {
		if !isSpanningTree(g, tr) {
			t.Fatalf("tree %d is not a spanning tree", i)
		}
	}
	if res.PackValue <= 0 {
		t.Fatalf("pack value %f", res.PackValue)
	}
}

// TestPackingRespectsPlantedCut is experiment E6: with high probability at
// least one sampled tree crosses the (known) minimum cut at most twice.
func TestPackingRespectsPlantedCut(t *testing.T) {
	failures := 0
	const trials = 10
	for seed := int64(0); seed < trials; seed++ {
		p := gen.PlantedCut(24, 20, 3, seed)
		res, err := SampleTrees(p.G, Options{Seed: seed * 31}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		good := false
		for _, tr := range res.Trees {
			if respects(p.G, tr, p.InCut) <= 2 {
				good = true
				break
			}
		}
		if !good {
			failures++
		}
	}
	if failures > 1 { // allow one unlucky seed out of ten
		t.Fatalf("%d/%d trials had no 2-respecting tree", failures, trials)
	}
}

func TestEstimateCutOrder(t *testing.T) {
	// Dumbbell: true min cut is the bridge (3); the estimate must be a
	// lower-bound-leaning constant-factor figure, far below the heavy
	// degrees inside the cliques.
	p := gen.Dumbbell(12, 3, 7)
	deg := p.G.WeightedDegrees()
	minDeg := deg[0]
	for _, d := range deg {
		if d < minDeg {
			minDeg = d
		}
	}
	est := EstimateCut(p.G, 3, nil, nil)
	if est > minDeg {
		t.Fatalf("estimate %d above min degree %d", est, minDeg)
	}
	if est > 100*3 {
		t.Fatalf("estimate %d too far above bridge weight 3", est)
	}
}

func TestSampleTreesSmallGraphs(t *testing.T) {
	// Two vertices, one edge.
	g := graph.New(2)
	if err := g.AddEdge(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	res, err := SampleTrees(g, Options{Seed: 1}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trees) == 0 || len(res.Trees[0]) != 1 {
		t.Fatalf("trees: %v", res.Trees)
	}
	// Triangle.
	tri := gen.Clique(3, 4, 2)
	res, err = SampleTrees(tri, Options{Seed: 2}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Trees {
		if !isSpanningTree(tri, tr) {
			t.Fatal("triangle tree invalid")
		}
	}
}

func TestSampleTreesDisconnected(t *testing.T) {
	g := gen.Disconnected(5, 6, 3)
	if _, err := SampleTrees(g, Options{Seed: 4}, nil, nil); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestSampleTreesDeterministicInSeed(t *testing.T) {
	g := gen.RandomConnected(40, 160, 10, 9)
	a, err := SampleTrees(g, Options{Seed: 5}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SampleTrees(g, Options{Seed: 5}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Trees) != len(b.Trees) || a.Estimate != b.Estimate {
		t.Fatal("same seed, different outcome")
	}
	for i := range a.Trees {
		for j := range a.Trees[i] {
			if a.Trees[i][j] != b.Trees[i][j] {
				t.Fatal("same seed, different trees")
			}
		}
	}
}

func TestPackValueBelowSkeletonCut(t *testing.T) {
	// Packing value never exceeds the skeleton's minimum cut; on a cycle
	// (min cut 2 everywhere) with p=1 the value must be ≤ 2 and ≥ 1.
	weights := make([]int64, 12)
	for i := range weights {
		weights[i] = 1
	}
	p := gen.Cycle(weights)
	res, err := SampleTrees(p.G, Options{Seed: 11}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.PackValue > 2.01 || res.PackValue < 0.5 {
		t.Fatalf("cycle pack value %f outside [0.5, 2]", res.PackValue)
	}
}
