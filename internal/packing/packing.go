// Package packing implements the tree-packing step of Karger's algorithm
// (paper §2.1, Lemma 1): sample a sparse skeleton of the graph whose
// minimum cut is Θ(log n), greedily pack spanning trees in it by repeated
// minimum spanning tree computations with respect to integer edge loads
// (the Plotkin–Shmoys–Tardos scheme in Thorup's greedy form), and sample
// O(log n) trees from the packing. With high probability one sampled tree
// crosses the minimum cut of the original graph at most twice.
//
// Weighted edges are sampled binomially per weight unit (geometric
// skipping, so the cost is proportional to the number of sampled copies).
// Two standard reductions keep the skeleton near-linear despite large
// weights: an edge's weight is clamped to the current cut estimate ĉ
// before sampling (no edge heavier than ĉ can cross a cut of value ≤ ĉ, so
// cuts at or below the estimate are unaffected), and materialized
// multiplicity is capped at the number of packing rounds (a tree uses an
// edge at most once per round, so further parallel copies are never
// load-relevant).
package packing

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/mst"
	"repro/internal/par"
	"repro/internal/progress"
	"repro/internal/trace"
	"repro/internal/wd"
)

// scratch holds the per-attempt working buffers of the estimate loop: the
// materialized skeleton (edges + origin map) and the greedy packing's
// load array. Skeleton sizes are stable across attempts of a solve and
// across solves of similar graphs, so recycling the backing arrays makes
// repeat solves allocation-free here; the buffers are recycled through a
// package pool because one scratch spans calls into several executors'
// primitives.
type scratch struct {
	edges  []graph.Edge
	origin []int32
	load   []int64
}

var scratchPool sync.Pool

func getScratch() *scratch {
	if v := scratchPool.Get(); v != nil {
		return v.(*scratch)
	}
	return &scratch{}
}

func putScratch(sc *scratch) {
	scratchPool.Put(sc)
}

// loadFor returns sc.load resized to n and zeroed.
func (sc *scratch) loadFor(n int) []int64 {
	if cap(sc.load) < n {
		sc.load = make([]int64, n)
		return sc.load
	}
	sc.load = sc.load[:n]
	clear(sc.load)
	return sc.load
}

// Options control the sampling and packing constants. The defaults are
// tuned empirically (see EXPERIMENTS.md E6): the paper's w.h.p. analysis
// fixes them only up to constants.
type Options struct {
	// Kappa scales the skeleton sampling probability p = Kappa·ln(n)/ĉ.
	Kappa float64
	// RoundsFactor scales the number of packing rounds:
	// rounds = ceil(RoundsFactor · ln²(n)), at least 24.
	RoundsFactor float64
	// AcceptFraction: accept an estimate when the packing value reaches
	// AcceptFraction · Kappa · ln(n).
	AcceptFraction float64
	// TreeCount is the number of trees sampled from the packing
	// (0 = ceil(2·log2 n) + 3).
	TreeCount int
	// Seed drives all randomness.
	Seed int64
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.Kappa == 0 {
		o.Kappa = 3
	}
	if o.RoundsFactor == 0 {
		o.RoundsFactor = 1.5
	}
	if o.AcceptFraction == 0 {
		o.AcceptFraction = 0.25
	}
	return o
}

// Result is the output of SampleTrees.
type Result struct {
	// Trees hold edge indices into the original graph; each is a spanning
	// tree. Trees are deduplicated, so there may be fewer than requested.
	Trees [][]int32
	// Estimate is the accepted cut estimate ĉ.
	Estimate int64
	// PackValue is the packing value rounds/maxLoad of the accepted packing.
	PackValue float64
	// SkeletonCopies is the size of the accepted skeleton multigraph.
	SkeletonCopies int
	// Packings counts how many estimate guesses ran a full packing.
	Packings int
}

// binomial samples Binomial(w, p) by geometric skipping, capped at cap.
func binomial(w int64, p float64, cap int64, rng *rand.Rand) int64 {
	if w <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		if w < cap {
			return w
		}
		return cap
	}
	logq := math.Log1p(-p)
	var count, pos int64
	for {
		u := rng.Float64()
		if u == 0 {
			u = 0.5
		}
		pos += int64(math.Log(u)/logq) + 1
		if pos > w {
			return count
		}
		count++
		if count >= cap {
			return count
		}
	}
}

// skeleton materializes the sampled multigraph into sc's recycled
// buffers: each original edge e contributes Binomial(min(w(e), clamp), p)
// unit copies (capped at multCap). origin maps each copy back to its
// original edge index. The returned slices are views of sc's buffers and
// are invalidated by the next skeleton call on the same scratch.
func skeleton(g *graph.Graph, p float64, clamp, multCap int64, rng *rand.Rand, sc *scratch) (edges []graph.Edge, origin []int32) {
	edges, origin = sc.edges[:0], sc.origin[:0]
	for i, e := range g.Edges() {
		if e.U == e.V {
			continue
		}
		w := e.W
		if w > clamp {
			w = clamp
		}
		c := binomial(w, p, multCap, rng)
		for j := int64(0); j < c; j++ {
			edges = append(edges, graph.Edge{U: e.U, V: e.V, W: 1})
			origin = append(origin, int32(i))
		}
	}
	sc.edges, sc.origin = edges, origin
	return edges, origin
}

// EstimateCut returns a constant-factor-leaning-low estimate of the
// minimum cut via Karger's sampling/connectivity threshold: the largest
// sampling rate 2^-j at which the skeleton stays connected satisfies
// c·2^-j ≈ ln n, so c ≈ ln(n)·2^j. The returned estimate errs low (which
// costs skeleton density, never correctness).
func EstimateCut(g *graph.Graph, seed int64, pool *par.Pool, m *wd.Meter) int64 {
	n := g.N()
	if n < 2 {
		return 1
	}
	deg := g.WeightedDegrees()
	upper, _ := pool.MinInt64(deg)
	if upper < 1 {
		upper = 1
	}
	lnN := math.Log(float64(n) + 1)
	rng := rand.New(rand.NewSource(seed))
	sc := getScratch()
	defer putScratch(sc)
	// Walk j downward (doubling p) until the sampled skeleton connects.
	for j := int(math.Log2(float64(upper)/lnN)) + 1; j > 0; j-- {
		p := math.Ldexp(1, -j) // 2^-j
		clamp := int64(3*lnN/p) + 1
		edges, _ := skeleton(g, p, clamp, int64(8*lnN)+4, rng, sc)
		if len(edges) < n-1 {
			continue
		}
		if mst.Components(n, edges, pool, m) == 1 {
			est := int64(lnN * math.Ldexp(1, j) / 2)
			if est < 1 {
				est = 1
			}
			if est > upper {
				est = upper
			}
			return est
		}
	}
	return upper // heavy graph; sampling never disconnected it above p=1/2
}

// SampleTrees runs the full Lemma 1 pipeline on a connected graph.
func SampleTrees(g *graph.Graph, opt Options, pool *par.Pool, m *wd.Meter) (*Result, error) {
	return SampleTreesContext(context.Background(), g, opt, pool, m, nil, trace.SpanRef{})
}

// SampleTreesContext is SampleTrees with cooperative cancellation and a
// live progress sink. ctx is checked between estimate guesses and between
// greedy packing rounds — the packing phase dominates many solves, so a
// canceled solve must be able to unwind from inside it, not only at the
// phase boundary before it. sink (nil OK) is advanced one PackRoundDone
// per greedy round, and sp (zero OK) gets child spans for the cut
// estimate and each packing attempt; instrumentation never affects the
// sampled trees.
func SampleTreesContext(ctx context.Context, g *graph.Graph, opt Options, pool *par.Pool, m *wd.Meter, sink *progress.Sink, sp trace.SpanRef) (*Result, error) {
	opt = opt.withDefaults()
	n := g.N()
	if n < 2 {
		return nil, fmt.Errorf("packing: need at least 2 vertices, have %d", n)
	}
	lnN := math.Log(float64(n) + 1)
	rounds := int(math.Ceil(opt.RoundsFactor * lnN * lnN))
	if rounds < 24 {
		rounds = 24
	}
	treeCount := opt.TreeCount
	if treeCount <= 0 {
		treeCount = int(math.Ceil(2*math.Log2(float64(n)))) + 3
	}
	deg := g.WeightedDegrees()
	upper, _ := pool.MinInt64(deg)
	if upper < 1 {
		return nil, fmt.Errorf("packing: graph has an isolated vertex")
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("packing: canceled: %w", err)
	}
	esp := sp.Child("estimate")
	est := EstimateCut(g, opt.Seed, pool, m)
	esp.AttrInt("estimate", est).End()
	ch := 2 * est
	if ch > upper {
		ch = upper
	}
	if ch < 1 {
		ch = 1
	}
	threshold := opt.AcceptFraction * opt.Kappa * lnN
	rng := rand.New(rand.NewSource(opt.Seed + 1))
	res := &Result{}
	sc := getScratch()
	defer putScratch(sc)
	for guess := 0; ; guess++ {
		if guess > 64 {
			return nil, fmt.Errorf("packing: estimate loop failed to converge")
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("packing: canceled: %w", err)
		}
		p := opt.Kappa * lnN / float64(ch)
		if p > 1 {
			p = 1
		}
		asp := sp.Child("pack-attempt").AttrInt("guess", int64(guess)).AttrInt("target", ch)
		edges, origin := skeleton(g, p, ch, int64(rounds), rng, sc)
		atFloor := p >= 1
		sink.AddPackRounds(int64(rounds))
		trees, maxLoad, ok, err := pack(ctx, n, edges, rounds, sc.loadFor(len(edges)), pool, m, sink, asp)
		if err != nil {
			asp.End()
			return nil, err
		}
		asp.AttrInt("skeleton_copies", int64(len(edges)))
		if ok {
			tau := float64(rounds) / float64(maxLoad)
			if tau >= threshold || atFloor {
				asp.Attr("accepted", "true").End()
				res.Estimate = ch
				res.PackValue = tau
				res.SkeletonCopies = len(edges)
				res.Packings = guess + 1
				res.Trees = chooseTrees(trees, origin, treeCount, rng)
				return res, nil
			}
		} else if atFloor {
			asp.End()
			return nil, fmt.Errorf("packing: graph is disconnected")
		}
		asp.Attr("accepted", "false").End()
		ch /= 2
		if ch < 1 {
			ch = 1
		}
	}
}

// pack greedily packs spanning trees: each round takes a minimum spanning
// tree with respect to the current integer loads, then increments the
// loads of its edges. Returns the trees (as skeleton edge indices), the
// maximum load (the packing value is rounds/maxLoad), and whether the
// skeleton was connected. Each round is a cancellation seam, a progress
// tick, and a "round" child span of sp: rounds are the packing phase's
// unit of work.
func pack(ctx context.Context, n int, edges []graph.Edge, rounds int, load []int64, pool *par.Pool, m *wd.Meter, sink *progress.Sink, sp trace.SpanRef) (trees [][]int32, maxLoad int64, ok bool, err error) {
	if len(edges) < n-1 {
		return nil, 0, false, nil
	}
	for r := 0; r < rounds; r++ {
		if err := ctx.Err(); err != nil {
			return nil, 0, false, fmt.Errorf("packing: canceled at round %d/%d: %w", r, rounds, err)
		}
		rsp := sp.Child("round").AttrInt("round", int64(r))
		sel, comps := mst.Forest(n, edges, load, pool, m)
		if comps != 1 {
			rsp.End()
			return nil, 0, false, nil
		}
		for _, i := range sel {
			load[i]++
		}
		trees = append(trees, sel)
		rsp.End()
		sink.PackRoundDone()
	}
	maxLoad = 1
	for _, l := range load {
		if l > maxLoad {
			maxLoad = l
		}
	}
	return trees, maxLoad, true, nil
}

// chooseTrees samples treeCount trees uniformly from the packing (Karger:
// a constant fraction of the packing's weight 2-respects the minimum cut,
// so uniform sampling from the greedy packing finds a good tree w.h.p.),
// translates skeleton copies to original edge indices, and deduplicates.
func chooseTrees(trees [][]int32, origin []int32, treeCount int, rng *rand.Rand) [][]int32 {
	seen := make(map[string]bool)
	var out [][]int32
	for i := 0; i < treeCount && len(trees) > 0; i++ {
		t := trees[rng.Intn(len(trees))]
		orig := make([]int32, len(t))
		for j, ei := range t {
			orig[j] = origin[ei]
		}
		sort.Slice(orig, func(a, b int) bool { return orig[a] < orig[b] })
		key := treeKey(orig)
		if !seen[key] {
			seen[key] = true
			out = append(out, orig)
		}
	}
	return out
}

// treeKey builds a map key from sorted edge indices.
func treeKey(orig []int32) string {
	b := make([]byte, 4*len(orig))
	for i, v := range orig {
		b[4*i] = byte(v)
		b[4*i+1] = byte(v >> 8)
		b[4*i+2] = byte(v >> 16)
		b[4*i+3] = byte(v >> 24)
	}
	return string(b)
}
